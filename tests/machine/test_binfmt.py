"""Tests for the compact binary code format (repro.machine.binfmt)."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Abs
from repro.lang import compile_module
from repro.machine.binfmt import binary_code_size, decode_code, encode_code
from repro.machine.codegen import compile_function
from repro.machine.vm import VM, instantiate
from repro.store.serialize import SerializeError

#: (source, sample int argument or None to skip execution)
SOURCES = [
    ("proc(x ce cc) (cc x)", 10),
    ("proc(x ce cc) (+ x 1 ce cont(t) (* t 2 ce cc))", 10),
    ("proc(x ce cc) (== x 1 2 cont() (cc 10) cont() (cc 20) cont() (cc 99))", 2),
    (
        """
        proc(n ce cc)
          (Y λ(^c0 loop ^c)
             (c cont() (loop 1 0)
                cont(i acc)
                  (> i n cont() (cc acc)
                         cont() (+ acc i ce cont(a)
                                   (+ i 1 ce cont(j) (loop j a))))))
        """,
        10,
    ),
    ("proc(f ce cc) (f 3 ce cont(t) (print t cont(u) (cc t)))", None),
]


@pytest.mark.parametrize("source,arg", SOURCES)
def test_roundtrip_executes_identically(source, arg):
    term = parse_term(source)
    assert isinstance(term, Abs)
    code = compile_function(term)
    back = decode_code(encode_code(code))

    assert back.instrs == code.instrs
    assert back.nregs == code.nregs
    assert back.arity == code.arity
    assert len(back.free_names) == len(code.free_names)

    if arg is not None:
        a = VM().call(instantiate(code), [arg])
        b = VM().call(instantiate(back), [arg])
        assert a.value == b.value
        assert a.output == b.output


def test_loop_roundtrip_runs():
    term = parse_term(SOURCES[3][0])
    code = compile_function(term)
    back = decode_code(encode_code(code))
    assert VM().call(instantiate(back), [100]).value == 5050


def test_root_free_names_preserved_exactly():
    compiled = compile_module(
        "module m export f let f(x: Int): Int = x + 1 end"
    )
    code = compiled.functions["f"].code
    back = decode_code(encode_code(code))
    assert back.free_names == code.free_names  # linking info survives


def test_nested_names_are_synthetic():
    term = parse_term(SOURCES[4][0])
    code = compile_function(term)
    back = decode_code(encode_code(code))
    # nested code keeps counts but not spellings
    for original, rebuilt in zip(code.codes, back.codes):
        assert len(rebuilt.free_names) == len(original.free_names)
        assert len(rebuilt.params) == len(original.params)


def test_param_sorts_preserved():
    term = parse_term("proc(x ce cc) (cc x)")
    code = compile_function(term)
    back = decode_code(encode_code(code))
    assert [p.is_cont for p in back.params] == [False, True, True]
    assert back.is_proc


def test_size_is_compact():
    term = parse_term(SOURCES[3][0])
    code = compile_function(term)
    size = binary_code_size(code)
    total_instrs = len(code.instrs) + sum(len(c.instrs) for c in code.codes)
    # a handful of bytes per instruction, not hundreds
    assert size < total_instrs * 25


def test_corrupt_image_rejected():
    code = compile_function(parse_term("proc(x ce cc) (cc x)"))
    data = encode_code(code)
    with pytest.raises(SerializeError):
        decode_code(data + b"\x00")
    with pytest.raises(SerializeError):
        decode_code(data[:-2])
