"""Structured StepLimitExceeded: limit, executed count, partial result."""

import pytest

from repro.lang import TycoonSystem
from repro.machine.vm import StepLimitExceeded

LOOP = """
module m export spin
import io
let spin(n: Int): Int =
  var i := 0 in
  begin
    while true do begin io.print(i); i := i + 1 end
  end; i end
end"""


def _run_to_limit(limit):
    system = TycoonSystem()
    system.compile(LOOP)
    vm = system.vm(step_limit=limit)
    with pytest.raises(StepLimitExceeded) as excinfo:
        vm.call(system.closure("m", "spin"), [0])
    return excinfo.value


def test_exception_carries_structured_fields():
    exc = _run_to_limit(400)
    assert exc.limit == 400
    assert exc.instructions == 400
    assert exc.partial is not None
    assert exc.partial.instructions == 400
    assert exc.partial.value is None  # never reached the final continuation


def test_partial_result_preserves_output_so_far():
    small = _run_to_limit(300)
    large = _run_to_limit(900)
    # the io.print output produced before the limit hit is retained, and a
    # longer leash yields strictly more of the same prefix
    assert len(large.partial.output) > len(small.partial.output) > 0
    assert large.partial.output[: len(small.partial.output)] == small.partial.output


def test_partial_runs_can_be_profiled():
    from repro.obs.profile import VMProfiler

    system = TycoonSystem()
    system.compile(LOOP)
    profiler = VMProfiler()
    vm = system.vm(step_limit=500)
    vm.profiler = profiler
    with pytest.raises(StepLimitExceeded) as excinfo:
        vm.call(system.closure("m", "spin"), [0])
    # the profile covers exactly the instructions the truncated run executed
    assert profiler.total_instructions == excinfo.value.instructions == 500


def test_message_still_readable():
    exc = _run_to_limit(250)
    assert "exceeded 250 instructions" in str(exc)
