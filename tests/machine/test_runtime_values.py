"""Tests for runtime value utilities (repro.machine.runtime)."""

import pytest

from repro.core.names import Name
from repro.core.syntax import Char, Oid, UNIT
from repro.machine.runtime import (
    Env,
    ForeignTable,
    MachineError,
    TmlArray,
    TmlByteArray,
    TmlVector,
    identical,
    show_value,
)


class TestIdentical:
    """Object identity as the ``==`` primitive sees it."""

    def test_simple_values_by_value(self):
        assert identical(3, 3)
        assert not identical(3, 4)
        assert identical("a", "a")
        assert identical(Char("x"), Char("x"))
        assert identical(UNIT, UNIT)
        assert identical(True, True)

    def test_bool_int_not_conflated(self):
        assert not identical(True, 1)
        assert not identical(0, False)

    def test_char_string_not_conflated(self):
        assert not identical(Char("a"), "a")

    def test_store_objects_by_identity(self):
        a = TmlArray([1])
        b = TmlArray([1])
        assert identical(a, a)
        assert not identical(a, b)

    def test_vectors_by_identity_despite_eq(self):
        # python-level __eq__ is structural, TML identity is not
        a, b = TmlVector([1]), TmlVector([1])
        assert a == b
        assert not identical(a, b)

    def test_oids_by_value(self):
        assert identical(Oid(5), Oid(5))
        assert not identical(Oid(5), Oid(6))


class TestShowValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (42, "42"),
            (True, "true"),
            (False, "false"),
            (Char("x"), "x"),
            ("text", "text"),
            (UNIT, "unit"),
            (TmlArray([1, 2]), "[1 2]"),
            (TmlVector([True, UNIT]), "#[true unit]"),
            (TmlByteArray(b"\x01\x02"), "$[1 2]"),
            (Oid(0x10), "<oid 0x00000010>"),
        ],
    )
    def test_rendering(self, value, expected):
        assert show_value(value) == expected

    def test_nested(self):
        assert show_value(TmlArray([TmlVector([1])])) == "[#[1]]"


class TestEnv:
    def test_lookup_walks_chain(self):
        a, b = Name("a", 0), Name("b", 1)
        outer = Env({a: 1})
        inner = Env({b: 2}, outer)
        assert inner.lookup(a) == 1
        assert inner.lookup(b) == 2

    def test_shadowing(self):
        a = Name("a", 0)
        outer = Env({a: "outer"})
        inner = Env({a: "inner"}, outer)
        assert inner.lookup(a) == "inner"

    def test_unbound_raises(self):
        with pytest.raises(MachineError, match="unbound"):
            Env().lookup(Name("ghost", 9))

    def test_extend(self):
        a, b = Name("a", 0), Name("b", 1)
        env = Env({a: 1}).extend([b], [2])
        assert env.lookup(a) == 1 and env.lookup(b) == 2

    def test_flatten_inner_wins(self):
        a, b = Name("a", 0), Name("b", 1)
        outer = Env({a: "outer", b: "only"})
        inner = Env({a: "inner"}, outer)
        flat = inner.flatten()
        assert flat[a] == "inner" and flat[b] == "only"


class TestForeignTable:
    def test_register_and_lookup(self):
        table = ForeignTable()
        table.register("f", len)
        assert table.lookup("f") is len
        assert "f" in table

    def test_unknown_function(self):
        with pytest.raises(MachineError, match="unknown foreign"):
            ForeignTable().lookup("ghost")
