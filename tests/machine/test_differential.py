"""Differential tests: the TAM VM must agree with the CPS interpreter.

The interpreter is the semantics oracle (call-by-value λ-calculus with
store); these tests run the same terms on both engines — and through the
optimizer — and require identical observable behaviour.
"""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Abs
from repro.machine.codegen import compile_function
from repro.machine.cps_interp import Interpreter
from repro.machine.runtime import UncaughtTmlException
from repro.machine.vm import VM, instantiate
from repro.primitives.registry import default_registry
from repro.rewrite import optimize

#: proc sources exercising every corner of the execution model,
#: paired with (args, expected) cases.
CASES = [
    ("proc(x ce cc) (cc x)", [(7,), 7]),
    ("proc(x ce cc) (+ x 1 ce cont(t) (* t t ce cc))", [(6,), 49]),
    ("proc(x ce cc) (< x 0 cont() (cc -1) cont() (cc 1))", [(5,), 1]),
    (
        """
        proc(n ce cc)
          (Y λ(^c0 fact ^c)
             (c cont() (fact n ce cc)
                proc(k ce2 cc2)
                  (<= k 1 cont() (cc2 1)
                          cont() (- k 1 ce2 cont(m)
                                    (fact m ce2 cont(r) (* k r ce2 cc2))))))
        """,
        [(10,), 3628800],
    ),
    (
        """
        proc(n ce cc)
          (new n 1 cont(a)
            (Y λ(^c0 loop ^c)
               (c cont() (loop 0 0)
                  cont(i acc)
                    (>= i n cont() (cc acc)
                            cont() ([] a i cont(v)
                                     (+ acc v ce cont(s)
                                        (+ i 1 ce cont(j) (loop j s))))))))
        """,
        [(25,), 25],
    ),
    (
        """
        proc(x ce cc)
          (λ(^h) (pushHandler h cont() (raise x))
           cont(e) (+ e 100 ce cc))
        """,
        [(11,), 111],
    ),
    (
        "proc(x ce cc) (== x 0 1 cont() (cc 100) cont() (cc 200) cont() (cc 300))",
        [(0,), 100],
    ),
    (
        "proc(c ce cc) (char2int c cont(i) (shl i 1 cont(j) (cc j)))",
        None,  # filled below with a Char argument
    ),
]


def _engines(source, registry):
    term = parse_term(source)
    assert isinstance(term, Abs)

    def run_interp(args):
        interp = Interpreter(registry=registry)
        return interp.call(interp.make_closure(term), list(args))

    code = compile_function(term, registry)

    def run_vm(args):
        return VM().call(instantiate(code), list(args))

    optimized = optimize(term, registry).term
    assert isinstance(optimized, Abs)
    opt_code = compile_function(optimized, registry)

    def run_vm_optimized(args):
        return VM().call(instantiate(opt_code), list(args))

    def run_interp_optimized(args):
        interp = Interpreter(registry=registry)
        return interp.call(interp.make_closure(optimized), list(args))

    return run_interp, run_vm, run_vm_optimized, run_interp_optimized


@pytest.mark.parametrize("source,case", [(s, c) for s, c in CASES if c is not None])
def test_all_engines_agree(source, case):
    registry = default_registry()
    args, expected = case
    runs = _engines(source, registry)
    values = [run(args).value for run in runs]
    assert values == [expected] * 4, values


def test_char_case_agrees():
    from repro.core.syntax import Char

    registry = default_registry()
    runs = _engines("proc(c ce cc) (char2int c cont(i) (shl i 1 cont(j) (cc j)))", registry)
    values = [run((Char("A"),)).value for run in runs]
    assert values == [130] * 4


def test_exceptions_agree():
    registry = default_registry()
    source = "proc(a b ce cc) (/ a b ce cc)"
    run_interp, run_vm, run_vm_opt, run_interp_opt = _engines(source, registry)
    for run in (run_interp, run_vm, run_vm_opt, run_interp_opt):
        with pytest.raises(UncaughtTmlException):
            run((1, 0))
        assert run((7, 2)).value == 3


def test_output_order_agrees():
    registry = default_registry()
    source = """
    proc(x ce cc)
      (print 1 cont(a) (print 2 cont(b) (print x cont(d) (cc 0))))
    """
    run_interp, run_vm, run_vm_opt, _ = _engines(source, registry)
    outputs = [run((3,)).output for run in (run_interp, run_vm, run_vm_opt)]
    assert outputs == [["1", "2", "3"]] * 3


def test_instruction_counts_drop_after_optimization():
    registry = default_registry()
    source = """
    proc(x ce cc)
      (λ(inc) (inc x ce cont(a) (inc a ce cc))
       proc(v ce2 cc2) (+ v 1 ce2 cc2))
    """
    _, run_vm, run_vm_opt, _ = _engines(source, registry)
    plain = run_vm((5,))
    fast = run_vm_opt((5,))
    assert plain.value == fast.value == 7
    assert fast.instructions < plain.instructions
