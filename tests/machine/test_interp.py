"""Tests for the reference CPS interpreter (repro.machine.cps_interp)."""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import Char, UNIT
from repro.machine.cps_interp import FuelExhausted, Interpreter
from repro.machine.runtime import (
    Closure,
    ForeignTable,
    TmlArray,
    TmlVector,
    UncaughtTmlException,
)


def run(source, **kwargs):
    return Interpreter(**kwargs).run(parse_term(source))


class TestBasics:
    def test_halt_literal(self):
        assert run("(halt 42)").value == 42

    def test_binding_and_arith(self):
        assert run("(λ(x) (+ x 1 cont(e) (halt -1) cont(t) (halt t))  41)").value == 42

    def test_paper_loop_sums(self):
        """The for-loop shape of section 2.3 executes correctly."""
        src = """
        (Y λ(^c0 for ^c)
           (c cont() (for 1 0)
              cont(i acc)
                (> i 10 cont() (halt acc)
                        cont() (+ acc i cont(e) (halt -1)
                                   cont(a) (+ i 1 cont(e2) (halt -2)
                                              cont(j) (for j a))))))
        """
        assert run(src).value == 55

    def test_higher_order_argument(self):
        src = """
        (λ(apply f) (apply f 10 cont(e) (halt -1) cont(r) (halt r))
         proc(g v ce cc) (g v ce cc)
         proc(x ce2 cc2) (* x x ce2 cc2))
        """
        assert run(src).value == 100

    def test_case_dispatch(self):
        src = "(== 2 1 2 3 cont() (halt 10) cont() (halt 20) cont() (halt 30))"
        assert run(src).value == 20

    def test_case_else(self):
        src = "(== 9 1 cont() (halt 10) cont() (halt 99))"
        assert run(src).value == 99

    def test_case_no_match_traps(self):
        with pytest.raises(UncaughtTmlException):
            run("(== 9 1 cont() (halt 10))")


class TestCosts:
    def test_proc_call_costs_more_than_cont_call(self):
        cont_run = run("(λ(x) (halt x)  1)")
        proc_run = run("(λ(f) (f 1 cont(e) (halt -1) cont(r) (halt r))"
                       " proc(x ce cc) (cc x))")
        # at least one proc call (6) vs one cont call (2)
        assert proc_run.cost > cont_run.cost

    def test_steps_counted(self):
        result = run("(halt 1)")
        assert result.steps == 1

    def test_fuel_exhaustion(self):
        src = "(Y λ(^c0 ^loop ^c) (c cont() (loop) cont() (loop)))"
        with pytest.raises(FuelExhausted):
            run(src, fuel=100)


class TestArithmeticRuntime:
    def test_division_truncates(self):
        assert run("(/ -7 2 cont(e) (halt -99) cont(t) (halt t))").value == -3

    def test_zero_divide_goes_to_ce(self):
        assert run("(/ 1 0 cont(e) (halt 111) cont(t) (halt t))").value == 111

    def test_overflow_goes_to_ce(self):
        big = (1 << 63) - 1
        assert run(f"(+ {big} 1 cont(e) (halt 7) cont(t) (halt t))").value == 7

    def test_comparison_branches(self):
        assert run("(< 1 2 cont() (halt 1) cont() (halt 0))").value == 1
        assert run("(>= 1 2 cont() (halt 1) cont() (halt 0))").value == 0

    def test_type_error_traps(self):
        with pytest.raises(UncaughtTmlException):
            run("(+ 'a' 1 cont(e) (halt -1) cont(t) (halt t))")


class TestConversions:
    def test_char_roundtrip(self):
        assert run("(char2int 'A' cont(i) (halt i))").value == 65
        result = run("(int2char 97 cont(c) (halt c))")
        assert result.value == Char("a")


class TestOutput:
    def test_print_collects_output(self):
        result = run('(print "hello" cont(u) (print 42 cont(u2) (halt u2)))')
        assert result.output == ["hello", "42"]
        assert result.value == UNIT


class TestYSemantics:
    def test_mutual_recursion(self):
        src = """
        (Y λ(^c0 even odd ^c)
           (c cont() (even 10 cont(e) (halt -1) cont(r) (halt r))
              proc(n ce cc)
                (== n 0 cont() (cc true)
                        cont() (- n 1 ce cont(m) (odd m ce cc)))
              proc(n2 ce2 cc2)
                (== n2 0 cont() (cc2 false)
                         cont() (- n2 1 ce2 cont(m2) (even m2 ce2 cc2)))))
        """
        assert run(src).value is True

    def test_binding_visible_inside_entry(self):
        src = "(Y λ(^c0 ^again ^c) (c cont() (again 1) cont(n) (halt n)))"
        assert run(src).value == 1


class TestCall:
    def test_call_supplies_top_continuations(self):
        interp = Interpreter()
        proc = parse_term("proc(x ce cc) (* x 2 ce cc)")
        closure = interp.make_closure(proc)
        assert interp.call(closure, [21]).value == 42

    def test_call_propagates_exception(self):
        interp = Interpreter()
        proc = parse_term("proc(x ce cc) (ce x)")
        closure = interp.make_closure(proc)
        with pytest.raises(UncaughtTmlException):
            interp.call(closure, [1])


class TestForeign:
    def test_ccall_success(self):
        foreign = ForeignTable({"double": lambda x: x * 2})
        src = '(vector 21 cont(v) (ccall "double" v cont(e) (halt -1) cont(r) (halt r)))'
        assert Interpreter(foreign=foreign).run(parse_term(src)).value == 42

    def test_ccall_error_goes_to_ce(self):
        def boom(x):
            raise RuntimeError("nope")

        foreign = ForeignTable({"boom": boom})
        src = '(vector 1 cont(v) (ccall "boom" v cont(e) (halt e) cont(r) (halt r)))'
        result = Interpreter(foreign=foreign).run(parse_term(src))
        assert "nope" in result.value
