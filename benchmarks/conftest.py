"""Shared fixtures for the experiment benchmarks (see DESIGN.md §3).

Every experiment Ei from DESIGN.md has one module here that regenerates the
corresponding result of the paper.  Benchmarks print a paper-shaped summary
table (visible with ``pytest benchmarks/ --benchmark-only -s``) and assert
the *shape* of the paper's claim (who wins, by roughly what factor) — not
absolute numbers, since the substrate is a Python VM, not 1996 hardware.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import CONFIG_NONE, CONFIG_STATIC
from repro.lang import TycoonSystem


@pytest.fixture
def once(benchmark):
    """Run a measurement exactly once under the benchmark machinery.

    Experiment report/assertion tests are not throughput benchmarks, but
    they must still execute under ``--benchmark-only``; this wraps them as
    single-round pedantic benchmarks.
    """

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run


@pytest.fixture(scope="session")
def system_none():
    """A system image compiling without any optimization."""
    return TycoonSystem(options=CONFIG_NONE)


@pytest.fixture(scope="session")
def system_static():
    """A system image with the local (static) optimizer enabled."""
    return TycoonSystem(options=CONFIG_STATIC)
