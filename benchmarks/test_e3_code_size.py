"""E3 — §6: the persistent TML encoding doubles code size.

"On the down side, due to the space requirements for the additional
persistent encoding of the TML tree for each function, the code size
doubles at the same time (1.2MB vs 600kB for the complete Tycoon system)."

Regenerates: total executable-code bytes vs code+PTML bytes over every
compiled function in the image (the Stanford suite + the standard library),
and the resulting ratio (paper: 2.0×).
"""

import pytest

from repro.bench.stanford import PROGRAMS
from repro.lang import TycoonSystem
from repro.lang.modules import compile_stdlib
from repro.machine.isa import flatten_codes
from repro.store.serialize import Blob, encode_value


def _sizes(code) -> tuple[int, int]:
    """(executable bytes, ptml bytes) for one code object tree."""
    from repro.machine.binfmt import binary_code_size

    exe = binary_code_size(code)
    ptml = 0
    for part in flatten_codes(code):
        if isinstance(part.ptml_ref, Blob):
            ptml += len(part.ptml_ref.data)
    return exe, ptml


@pytest.fixture(scope="module")
def image():
    """Compile the whole system: stdlib + the Stanford suite."""
    system = TycoonSystem()
    for program in PROGRAMS.values():
        system.compile(program.source)
    functions = []
    for module in compile_stdlib().values():
        functions.extend(module.functions.values())
    for module in system.compiled.values():
        functions.extend(module.functions.values())
    return functions


def test_e3_report_and_ratio(once, image):
    once(lambda: None)
    exe_total = 0
    ptml_total = 0
    for fn in image:
        exe, ptml = _sizes(fn.code)
        exe_total += exe
        ptml_total += ptml
    ratio = (exe_total + ptml_total) / exe_total
    print(
        f"\nE3 — code size: executable {exe_total / 1024:.1f} KiB, "
        f"PTML {ptml_total / 1024:.1f} KiB, "
        f"total/executable ratio {ratio:.2f}x  (paper: 2.0x — 1.2MB vs 600kB)"
    )
    # the paper's shape: attaching PTML imposes a large constant-factor
    # space overhead (paper: 2.0x; here ~1.4x — our varint-interned PTML is
    # more compact relative to TAM code than the original encoding was
    # relative to native code; see EXPERIMENTS.md E3)
    assert 1.2 <= ratio <= 3.0, ratio


def test_e3_every_function_carries_ptml(once, image):
    once(lambda: None)
    for fn in image:
        assert fn.code.ptml_ref is not None, fn.name


def test_e3_encoding_throughput(benchmark):
    """Encoding cost of PTML for a mid-sized function (bookkeeping metric)."""
    from repro.lang import compile_module
    from repro.store.ptml import encode_ptml

    compiled = compile_module(PROGRAMS["queens"].source)
    term = compiled.functions["place"].term
    blob = benchmark(lambda: encode_ptml(term))
    assert len(blob.data) > 100
