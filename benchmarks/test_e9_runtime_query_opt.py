"""E9 — §4.2: query optimization must be delayed until runtime.

"Since the optimization of query expressions depends on runtime bindings
(for example, knowledge about index structures), we have to delay query
optimizations until runtime."

Regenerates: point-query cost on an indexed vs unindexed relation, across a
size sweep.  The statically compiled plan must scan regardless of the index
(the compiler cannot see it); the runtime-optimized plan uses the index and
becomes O(log n / 1), with the win growing with |R|.
"""

import pytest

from repro.lang import TycoonSystem
from repro.query import Relation, optimize_query_function
from repro.store.heap import ObjectHeap

SIZES = [200, 2000, 20_000]

SRC = """
module q export byid
import db
type Row = tuple id: Int, v: Int end
let byid(k: Int) =
  select r from db.data as r : Row where r.id == k end
end
"""


def _build(n, indexed):
    heap = ObjectHeap()
    system = TycoonSystem(heap=heap)
    data = Relation("data", ["id", "v"])
    for i in range(n):
        data.insert((i, i * 3))
    if indexed:
        data.create_index("id")
    heap.store(data)
    system.register_data_module("db", {"data": data})
    system.compile(SRC)
    return system, data


@pytest.fixture(scope="module")
def systems():
    return {
        (n, indexed): _build(n, indexed)
        for n in SIZES
        for indexed in (False, True)
    }


@pytest.mark.parametrize("n", SIZES)
def test_e9_static_plan_scans(benchmark, systems, n):
    system, _ = systems[(n, True)]
    closure = system.closure("q", "byid")
    vm = system.vm()
    out = benchmark(lambda: vm.call(closure, [n // 2]).value)
    assert out.to_tuples() == [(n // 2, (n // 2) * 3)]


@pytest.mark.parametrize("n", SIZES)
def test_e9_runtime_plan_uses_index(benchmark, systems, n):
    system, _ = systems[(n, True)]
    result = optimize_query_function(system, "q", "byid")
    assert result.query_stats.count("index-select") == 1
    vm = system.vm()
    out = benchmark(lambda: vm.call(result.closure, [n // 2]).value)
    assert out.to_tuples() == [(n // 2, (n // 2) * 3)]


def test_e9_report(once, systems):
    once(lambda: None)
    print("\nE9 — point query: static plan vs runtime-optimized plan (instr)")
    gains = {}
    for n in SIZES:
        system, data = systems[(n, True)]
        slow = system.vm().call(system.closure("q", "byid"), [n // 2])
        result = optimize_query_function(system, "q", "byid")
        fast = system.vm().call(result.closure, [n // 2])
        assert slow.value.to_tuples() == fast.value.to_tuples()
        gains[n] = slow.instructions / fast.instructions
        print(
            f"  |R|={n:>6}: static {slow.instructions:>8}, "
            f"runtime-optimized {fast.instructions:>4} "
            f"({gains[n]:.0f}x)"
        )
    # the win grows with relation size (O(n) vs O(1))
    assert gains[20_000] > gains[200] * 10


def test_e9_no_index_no_rewrite(once, systems):
    once(lambda: None)
    system, _ = systems[(2000, False)]
    result = optimize_query_function(system, "q", "byid")
    # runtime binding says: no index — the rewrite correctly does not fire
    assert result.query_stats.count("index-select") == 0
    out = system.vm().call(result.closure, [7])
    assert out.value.to_tuples() == [(7, 21)]
