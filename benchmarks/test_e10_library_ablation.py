"""E10 (ablation) — validating the paper's *explanation* of E1/E2.

Section 6 attributes the static optimizer's impotence to one design
decision: "even operations on integers and arrays are factored out into
dynamically bound libraries and therefore not amenable to local
optimization."

This ablation removes that decision: TL is compiled with
``library_ops=False`` (operators open-coded as primitives).  If the paper's
diagnosis is right, then on open-coded builds (a) unoptimized code is
already much faster than the library build, and (b) the dynamic optimizer's
edge largely evaporates — there is no abstraction barrier left to dissolve.
"""

import pytest

from repro.bench.harness import geometric_mean
from repro.bench.stanford import PROGRAMS
from repro.lang import CompileOptions, TycoonSystem
from repro.reflect import optimize_function
from repro.rewrite import OptimizerConfig

#: loop/recursion-heavy programs where operator dispatch dominates
SELECTION = ["fib", "towers", "sieve", "bubble", "intmm"]
_SCALE = 0.5


def _instructions(system, name, n):
    closure = system.closure(name, "run")
    return system.vm().call(closure, [n]).instructions


@pytest.fixture(scope="module")
def measurements():
    library = TycoonSystem(
        options=CompileOptions(optimizer=OptimizerConfig(), library_ops=True)
    )
    open_coded = TycoonSystem(
        options=CompileOptions(optimizer=OptimizerConfig(), library_ops=False)
    )
    rows = {}
    for name in SELECTION:
        program = PROGRAMS[name]
        n = max(1, int(program.bench_n * _SCALE))
        library.compile(program.source)
        open_coded.compile(program.source)

        lib_static = _instructions(library, name, n)
        open_static = _instructions(open_coded, name, n)

        lib_dynamic_closure = optimize_function(library, name, "run")
        lib_dynamic = library.vm().call(lib_dynamic_closure, [n]).instructions
        open_dynamic_closure = optimize_function(open_coded, name, "run")
        open_dynamic = open_coded.vm().call(open_dynamic_closure, [n]).instructions

        expected = program.reference(n)
        assert library.vm().call(lib_dynamic_closure, [n]).value == expected
        assert open_coded.vm().call(open_dynamic_closure, [n]).value == expected

        rows[name] = {
            "lib_static": lib_static,
            "lib_dynamic": lib_dynamic,
            "open_static": open_static,
            "open_dynamic": open_dynamic,
        }
    return rows


@pytest.mark.parametrize("name", SELECTION)
def test_e10_open_coded_execution(benchmark, name):
    system = TycoonSystem(options=CompileOptions(library_ops=False))
    program = PROGRAMS[name]
    n = max(1, int(program.bench_n * _SCALE))
    system.compile(program.source)
    closure = system.closure(name, "run")
    vm = system.vm()
    assert benchmark(lambda: vm.call(closure, [n]).value) == program.reference(n)


def test_e10_report(once, measurements):
    once(lambda: None)
    print("\nE10 — library factoring ablation (instructions):")
    print(f"{'program':<8} {'lib stat':>9} {'lib dyn':>9} {'open stat':>9} {'open dyn':>9}")
    lib_gains = []
    open_gains = []
    for name, row in measurements.items():
        lib_gain = row["lib_static"] / row["lib_dynamic"]
        open_gain = row["open_static"] / row["open_dynamic"]
        lib_gains.append(lib_gain)
        open_gains.append(open_gain)
        print(
            f"{name:<8} {row['lib_static']:>9} {row['lib_dynamic']:>9} "
            f"{row['open_static']:>9} {row['open_dynamic']:>9}   "
            f"dyn gain: lib {lib_gain:.2f}x vs open {open_gain:.2f}x"
        )
    lib_mean, open_mean = geometric_mean(lib_gains), geometric_mean(open_gains)
    print(f"dynamic-optimization gain: library {lib_mean:.2f}x, open-coded {open_mean:.2f}x")

    # (a) open-coded static code beats library static code outright
    for name, row in measurements.items():
        assert row["open_static"] < row["lib_static"], name
    # (b) the dynamic optimizer's edge comes from the library barrier
    assert lib_mean > open_mean * 1.15
    # (c) and with the barrier gone, there is little left to win
    assert open_mean < 1.4
