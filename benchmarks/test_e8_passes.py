"""E8 — the reduce/expand alternation (§3).

"When one or more abstractions are substituted during the expansion pass,
there usually is the opportunity to perform more reductions ... so the two
passes are applied repeatedly until no more changes are made."

Regenerates: final term cost under reduction-only, a single
expand-then-reduce round, and the full alternation, on call-heavy programs —
the alternation must dominate.
"""

import pytest

from repro.core.parser import parse_term
from repro.core.syntax import term_size
from repro.machine.cps_interp import Interpreter
from repro.primitives.registry import default_registry
from repro.rewrite import (
    ExpansionConfig,
    OptimizerConfig,
    expand_pass,
    optimize,
    reduce_only,
    reduce_to_fixpoint,
)
from repro.rewrite.cost import term_cost
from repro.rewrite.stats import RewriteStats

#: a call-heavy closed program: helper chains that only unlock folds after
#: repeated inline+reduce rounds.  Computes ((((7+1)*2)+1)*2) ... = 34.
SOURCE = """
(λ(inc)
  (λ(dbl)
     (inc 7 cont(e1) (halt -1)
        cont(a) (dbl a cont(e2) (halt -2)
          cont(b) (inc b cont(e3) (halt -3)
            cont(c) (dbl c cont(e4) (halt -4)
              cont(d) (halt d)))))
   proc(y ce2 cc2) (inc y ce2 cont(t) (- t 1 ce2 cont(u) (+ u t ce2 cont(v) (- v t ce2 cont(w) (+ w u ce2 cc2))))))
 proc(x ce cc) (+ x 1 ce cc))
"""


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def _strategies(registry):
    term = parse_term(SOURCE)

    reduced = reduce_only(parse_term(SOURCE), registry).term

    one_round = parse_term(SOURCE)
    stats = RewriteStats()
    one_round = reduce_to_fixpoint(one_round, registry, stats=stats)
    one_round = expand_pass(one_round, registry, ExpansionConfig(), stats)
    one_round = reduce_to_fixpoint(one_round, registry, stats=stats)

    full = optimize(parse_term(SOURCE), registry).term
    return {"reduce-only": reduced, "one-round": one_round, "alternation": full}


def test_e8_report(once, registry):
    strategies = once(lambda: _strategies(registry))
    print("\nE8 — pass strategies on a call-heavy program:")
    costs = {}
    for label, term in strategies.items():
        value = Interpreter(registry=registry).run(term).value
        assert value == 34, (label, value)
        costs[label] = term_cost(term, registry)
        print(
            f"  {label:<12} size={term_size(term):>4}  est. cost={costs[label]:>4}"
        )
    # a single round can sit *above* reduce-only (expansion copied bodies the
    # one reduction round could not yet collapse) — the point of the paper's
    # repeated alternation, which must dominate both:
    assert costs["alternation"] < costs["reduce-only"]
    assert costs["alternation"] < costs["one-round"]


@pytest.mark.parametrize("label", ["reduce-only", "one-round", "alternation"])
def test_e8_execution_speed(benchmark, registry, label):
    term = _strategies(registry)[label]
    interp = Interpreter(registry=registry)
    value = benchmark(lambda: interp.run(term).value)
    assert value == 34
