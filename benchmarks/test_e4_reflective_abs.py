"""E4 — §4.1's worked example: ``reflect.optimize(abs)``.

"The programmer can obtain a (dynamically created) function optimizedAbs
which is equivalent to the original function abs but which executes faster
than the original ... the reflective dynamic optimizer inlines the bodies of
complex.x and complex.y, i.e., optimizedAbs is equivalent to
let optimizedAbs(c : complex.T) : Real = sqrt(c.x*c.x + c.y*c.y)"

Regenerates: call timings of abs vs optimizedAbs, executed instructions,
and the structural check that the module accessors were inlined away.
"""

import pytest

from repro.core.pretty import pretty_compact
from repro.lang import TycoonSystem
from repro.reflect import optimize_result

COMPLEX_SRC = """
module complex export T new x y
type T = tuple x: Int, y: Int end
let new(a: Int, b: Int): T = tuple x = a, y = b end
let x(c: T): Int = c.x
let y(c: T): Int = c.y
end
"""

ABS_SRC = """
module app export abs
import complex
let abs(c: complex.T): Int =
  sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end
"""


@pytest.fixture(scope="module")
def setup():
    system = TycoonSystem()
    system.compile(COMPLEX_SRC)
    system.compile(ABS_SRC)
    point = system.call("complex", "new", [3, 4]).value
    original = system.closure("app", "abs")
    result = optimize_result(system, "app", "abs")
    return system, point, original, result


def test_e4_abs_original(benchmark, setup):
    system, point, original, _ = setup
    vm = system.vm()
    value = benchmark(lambda: vm.call(original, [point]).value)
    assert value == 5


def test_e4_abs_optimized(benchmark, setup):
    system, point, _, result = setup
    vm = system.vm()
    value = benchmark(lambda: vm.call(result.closure, [point]).value)
    assert value == 5


def test_e4_report(once, setup):
    system, point, original, result = setup
    slow = system.vm().call(original, [point])
    fast = system.vm().call(result.closure, [point])
    once(lambda: None)
    ratio = slow.instructions / fast.instructions
    print(
        f"\nE4 — optimizedAbs: {slow.instructions} -> {fast.instructions} "
        f"instructions ({ratio:.1f}x); entities inlined: {result.entities}"
    )
    assert fast.value == slow.value == 5
    # the abstraction barrier dissolved: big constant-factor win
    assert ratio >= 2.0

    # structural check: accessors inlined to direct field loads
    text = pretty_compact(result.term)
    assert "[]" in text
    assert "complex.x" not in text and "complex.y" not in text
