"""E1 — §6: local (static) optimization yields no significant speedup.

"Performing local program optimizations on standard benchmarks for
imperative programs (the Stanford Suite) do not yield a significant speedup
... the reason for this is the fact that even operations on integers and
arrays are factored out into dynamically bound libraries and therefore not
amenable to local optimization."

Regenerates: per-program timings unoptimized vs statically optimized, and
the geometric-mean static speedup (paper: ≈1×; measured here ≈1.0–1.2×).
"""

import pytest

from repro.bench.harness import geometric_mean, run_stanford
from repro.bench.stanford import PROGRAMS

_SCALE = 0.5


@pytest.fixture(scope="module")
def rows():
    return run_stanford(scale=_SCALE, repeats=2)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_static_vs_none_per_program(benchmark, system_none, system_static, name):
    """Benchmark the statically optimized build of each Stanford program."""
    program = PROGRAMS[name]
    n = max(1, int(program.bench_n * _SCALE))
    system_static.compile(program.source)
    closure = system_static.closure(name, "run")
    vm = system_static.vm()
    result = benchmark(lambda: vm.call(closure, [n]).value)
    assert result == program.reference(n)


def test_e1_static_speedup_is_insignificant(once, rows):
    once(lambda: None)
    """The paper's E1 claim: static/local optimization buys almost nothing."""
    mean = geometric_mean([r.static_speedup for r in rows])
    print("\nE1 — static (local) optimization speedup over unoptimized:")
    for row in rows:
        print(f"  {row.program:<10} {row.static_speedup:5.2f}x")
    print(f"  geometric mean: {mean:.2f}x  (paper: 'no significant speedup')")
    # "no significant speedup": well under the 2x the dynamic optimizer gets
    assert mean < 1.5
    # and it should not *hurt* either
    assert mean > 0.8


def test_e1_instructions_nearly_unchanged(once, rows):
    once(lambda: None)
    ratios = [r.instr_none / r.instr_static for r in rows]
    assert geometric_mean(ratios) < 1.6
