"""E2 — §6: dynamic (runtime) optimization more than doubles execution speed.

"However, a move to dynamic (link-time or runtime) optimization more than
doubles the execution speed of the standard benchmarks as well as of most
larger Tycoon programs we have experimented with."

Regenerates: per-program dynamic-over-static speedups and their geometric
mean (the paper's headline ">2x"), plus the noise-free instruction-count
ratio.
"""

import pytest

from repro.bench.harness import format_table, geometric_mean, run_stanford
from repro.bench.stanford import PROGRAMS
from repro.reflect import optimize_function

_SCALE = 0.5


@pytest.fixture(scope="module")
def rows():
    return run_stanford(scale=_SCALE, repeats=2)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_dynamic_per_program(benchmark, system_static, name):
    """Benchmark each Stanford program after reflective optimization."""
    program = PROGRAMS[name]
    n = max(1, int(program.bench_n * _SCALE))
    system_static.compile(program.source)
    closure = optimize_function(system_static, name, "run")
    vm = system_static.vm()
    result = benchmark(lambda: vm.call(closure, [n]).value)
    assert result == program.reference(n)


def test_e2_dynamic_more_than_doubles_speed(once, rows):
    once(lambda: None)
    """The paper's headline claim, reproduced in shape."""
    print("\nE2 — the full section 6 table:")
    print(format_table(rows))
    mean = geometric_mean([r.dynamic_speedup for r in rows])
    # paper: "more than doubles"; require comfortably above the static mean
    assert mean > 1.6, f"dynamic speedup geomean only {mean:.2f}x"
    static_mean = geometric_mean([r.static_speedup for r in rows])
    assert mean > static_mean * 1.4


def test_e2_instruction_ratio(once, rows):
    once(lambda: None)
    """Wall-clock-independent form of the claim."""
    mean = geometric_mean([r.instr_ratio for r in rows])
    assert mean > 1.3


def test_e2_every_program_improves(once, rows):
    once(lambda: None)
    for row in rows:
        assert row.instr_static >= row.instr_dynamic, row.program
