"""E7 — ablation of the §3 rewrite rules.

The paper argues eight generic λ-calculus rules subsume the classic
optimizations.  This experiment disables one rule at a time and measures the
residual term size and estimated cost over a corpus of compiled functions —
showing each rule carries real weight and that the rules cooperate (the
whole is better than any ablation).
"""

import pytest

from repro.bench.stanford import PROGRAMS
from repro.core.syntax import term_size
from repro.lang.check import check_module
from repro.lang.cps import CpsConverter
from repro.lang.parser import parse_module
from repro.primitives.registry import default_registry
from repro.rewrite import OptimizerConfig, RuleConfig, optimize
from repro.rewrite.cost import term_cost

#: rules whose ablation must visibly hurt on this corpus
LOAD_BEARING = ["subst", "remove", "reduce", "fold", "eta-reduce", "Y-remove"]
ALL_ABLATIONS = ["subst", "remove", "reduce", "eta-reduce", "fold", "case-subst",
                 "Y-remove", "Y-reduce"]


from repro.core.parser import parse_term

#: synthetic terms exercising the rules that library-call-only code cannot
#: reach (fold needs literal primitive operands; the Y rules need dead
#: recursive bindings — both arise in reflectively combined scopes)
_SYNTHETIC = [
    # constant folding cascade
    "proc(ce cc) (+ 1 2 ce cont(a) (* a 4 ce cont(b) (- b 2 ce cc)))",
    # case analysis of a known scrutinee + case-subst refinement
    """
    proc(v ce cc)
      (== v 1 2 cont() (+ v 1 ce cc) cont() (+ v 2 ce cc) cont() (cc 0))
    """,
    # a dead recursive binding plus an empty group after its removal
    """
    proc(x ce cc)
      (Y λ(^c0 dead ^c)
         (c cont() (+ x 1 ce cc)
            cont(i) (dead i)))
    """,
    # an eta-reducible forwarding wrapper
    "proc(f x ce cc) (f x ce cont(t) (cc t))",
]


@pytest.fixture(scope="module")
def corpus():
    """Unoptimized TML: every Stanford function (library + open-coded
    variants) plus synthetic rule-targeted terms."""
    terms = []
    for program in PROGRAMS.values():
        checked = check_module(parse_module(program.source))
        for library_ops in (True, False):
            converter = CpsConverter(checked, library_ops=library_ops)
            for decl in checked.module.functions():
                terms.append(converter.convert_function(decl))
    registry = default_registry()
    for source in _SYNTHETIC:
        terms.append(parse_term(source, prims=registry.names()))
    return terms


def _total_size(terms, config):
    registry = default_registry()
    total_size = 0
    total_cost = 0
    for term in terms:
        result = optimize(term, registry, OptimizerConfig(rules=config))
        total_size += term_size(result.term)
        total_cost += term_cost(result.term, registry)
    return total_size, total_cost


@pytest.fixture(scope="module")
def baseline(corpus):
    return _total_size(corpus, RuleConfig())


@pytest.mark.parametrize("rule", ALL_ABLATIONS)
def test_e7_ablate_rule(benchmark, corpus, baseline, rule):
    full_size, full_cost = baseline
    ablated_size, ablated_cost = benchmark.pedantic(
        lambda: _total_size(corpus, RuleConfig.without(rule)), rounds=1, iterations=1
    )
    print(
        f"\nE7 — without {rule:<11}: size {ablated_size:>6} (full {full_size}), "
        f"cost {ablated_cost:>6} (full {full_cost})"
    )
    # no ablation may *improve* on the full rule set (size is the paper's
    # monotone measure; the cost estimate can jitter by a few units because
    # folds trade primitive nodes for continuation transfers)
    assert ablated_size >= full_size
    assert ablated_cost >= full_cost - 0.01 * full_cost
    if rule in LOAD_BEARING:
        assert ablated_size > full_size, f"{rule} carried no weight on the corpus"


def test_e7_full_rules_shrink_corpus(once, corpus, baseline):
    once(lambda: None)
    raw_size = sum(term_size(t) for t in corpus)
    full_size, _ = baseline
    print(f"\nE7 — corpus size raw {raw_size}, fully optimized {full_size}")
    assert full_size < raw_size
