"""E5 — §4.2's merge-select rewrite: σp(σq(R)) → σp∧q(R).

One scan instead of two and no temporary relation.  Regenerates: wall time,
scan counts and temporary-row counts across a relation-size sweep, before
and after the rewrite.
"""

import pytest

from repro.lang import TycoonSystem
from repro.query import Relation, optimize_query_function
from repro.store.heap import ObjectHeap

SIZES = [300, 3000]

SRC = """
module q export stacked
import db
type Row = tuple id: Int, v: Int end
let stacked() =
  select b from
    (select a from db.data as a : Row where a.v % 2 == 0 end)
    as b : Row
  where b.v % 3 == 0 end
end
"""


def _build(n):
    heap = ObjectHeap()
    system = TycoonSystem(heap=heap)
    data = Relation("data", ["id", "v"])
    for i in range(n):
        data.insert((i, i % 97))
    heap.store(data)
    system.register_data_module("db", {"data": data})
    system.compile(SRC)
    return system, data


@pytest.fixture(scope="module", params=SIZES)
def setup(request):
    system, data = _build(request.param)
    result = optimize_query_function(system, "q", "stacked")
    assert result.query_stats.count("merge-select") == 1
    return request.param, system, data, result


def test_e5_nested(benchmark, setup):
    n, system, data, _ = setup
    original = system.closure("q", "stacked")
    vm = system.vm()
    out = benchmark(lambda: vm.call(original, []).value)
    assert all(t[1] % 6 == 0 for t in out.to_tuples())


def test_e5_merged(benchmark, setup):
    n, system, data, result = setup
    vm = system.vm()
    out = benchmark(lambda: vm.call(result.closure, []).value)
    assert all(t[1] % 6 == 0 for t in out.to_tuples())


def test_e5_report(once, setup):
    once(lambda: None)
    n, system, data, result = setup

    data.scans = 0
    slow = system.vm().call(system.closure("q", "stacked"), [])
    scans_nested = data.scans

    data.scans = 0
    fast = system.vm().call(result.closure, [])
    scans_merged = data.scans

    # temporary rows: the nested plan materializes the inner selection
    inner_rows = sum(1 for t in data.to_tuples() if t[1] % 2 == 0)
    print(
        f"\nE5 (n={n}) — nested: base scans {scans_nested}, temp rows "
        f"{inner_rows}; merged: base scans {scans_merged}, temp rows 0"
    )
    assert slow.value.to_tuples() == fast.value.to_tuples()
    assert scans_merged == 1
    assert scans_nested == 1  # nested also scans the base once; its second
    # scan hits the *temporary* relation, which the merged plan never builds
