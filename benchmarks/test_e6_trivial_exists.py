"""E6 — §4.2's trivial-exists rewrite.

When the range variable does not occur in the predicate,
``∃x∈R: p ≡ p ∧ R≠∅``: O(|R|) predicate evaluations become an O(1)
emptiness test plus one predicate evaluation.  Regenerates: time and
instruction counts across a relation-size sweep — the rewritten query's
cost must be flat in |R| while the original grows linearly.
"""

import pytest

from repro.lang import TycoonSystem
from repro.query import Relation, optimize_query_function
from repro.store.heap import ObjectHeap

SIZES = [100, 1000, 10_000]

SRC = """
module q export anybig
import db
type Row = tuple v: Int end
let anybig(limit: Int): Bool =
  exists r : Row in db.data : limit > 500
end
"""


def _build(n):
    heap = ObjectHeap()
    system = TycoonSystem(heap=heap)
    data = Relation("data", ["v"])
    for i in range(n):
        data.insert((i,))
    heap.store(data)
    system.register_data_module("db", {"data": data})
    system.compile(SRC)
    result = optimize_query_function(system, "q", "anybig")
    assert result.query_stats.count("trivial-exists") == 1
    return system, result


@pytest.fixture(scope="module")
def systems():
    return {n: _build(n) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_e6_original(benchmark, systems, n):
    system, _ = systems[n]
    closure = system.closure("q", "anybig")
    vm = system.vm()
    assert benchmark(lambda: vm.call(closure, [100]).value) is False


@pytest.mark.parametrize("n", SIZES)
def test_e6_rewritten(benchmark, systems, n):
    system, result = systems[n]
    vm = system.vm()
    assert benchmark(lambda: vm.call(result.closure, [100]).value) is False


def test_e6_report(once, systems):
    once(lambda: None)
    print("\nE6 — trivial-exists: predicate evaluations per query")
    originals = {}
    rewrittens = {}
    for n in SIZES:
        system, result = systems[n]
        slow = system.vm().call(system.closure("q", "anybig"), [100])
        fast = system.vm().call(result.closure, [100])
        assert slow.value is fast.value is False
        originals[n] = slow.instructions
        rewrittens[n] = fast.instructions
        print(
            f"  |R|={n:>6}: original {slow.instructions:>8} instr, "
            f"rewritten {fast.instructions:>4} instr"
        )
    # original grows linearly with |R|
    assert originals[10_000] > originals[100] * 20
    # rewritten is O(1): flat across two orders of magnitude
    assert rewrittens[10_000] == rewrittens[100]
    # crossover: even at the smallest size the rewrite already wins
    assert rewrittens[100] < originals[100]
